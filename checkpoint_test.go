package manetp2p

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"manetp2p/internal/checkpoint"
	"manetp2p/internal/p2p"
	"manetp2p/internal/sim"
)

// ckptGolden gates the full 21-fixture fresh-process round-trip (about
// as expensive as the golden suite itself); ./check.sh checkpoint runs
// it. The cheap always-on variants below cover the same machinery.
var ckptGolden = flag.Bool("ckpt-golden", false,
	"run the full golden-fixture checkpoint/resume round-trip (./check.sh checkpoint)")

// ckptScenario is a busy but fast scenario: faults mid-run, health
// telemetry, snapshots, traffic buckets and churn all feed the Result,
// so a restore that loses any subsystem's state shows up.
func ckptScenario() Scenario {
	sc := DefaultScenario(30, Regular)
	sc.Name = "ckpt-roundtrip"
	sc.Duration = 240 * sim.Second
	sc.Replications = 2
	sc.Seed = 13
	sc.SnapshotEvery = 60 * sim.Second
	sc.TrafficBucket = 60 * sim.Second
	sc.HealthEvery = 10 * sim.Second
	sc.Churn = ChurnConfig{MeanUptime: 300 * sim.Second, MeanDowntime: 30 * sim.Second}
	sc.Faults = FaultPlan{Events: []FaultEvent{
		PartitionFault(60*sim.Second, 90*sim.Second, AxisX, 50),
	}}
	sc.Params.PeerCache = p2p.PeerCacheConfig{Enabled: true}
	return sc
}

// A checkpointed run that is never interrupted must return exactly what
// the plain runner returns: boundaries only segment Sim.Run.
func TestRunCheckpointedMatchesRun(t *testing.T) {
	sc := ckptScenario()
	plain, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ckpt, err := NewPool(0).RunCheckpointed(sc, CheckpointConfig{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultJSON(t, plain), resultJSON(t, ckpt)) {
		t.Error("checkpointed run's Result differs from the plain run's")
	}
	info, err := InspectCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Done || len(info.Completed) != sc.Replications || len(info.Cursors) != 0 {
		t.Errorf("final checkpoint state = done=%v completed=%v cursors=%v, want done, all reps, no cursors",
			info.Done, info.Completed, info.Cursors)
	}
}

// Satellite (ISSUE 8): checkpoint during an active partition, resume
// in-process, and the full Result — Resilience explicitly included —
// must match the uninterrupted run byte-for-byte.
func TestCheckpointResumeUnderFaults(t *testing.T) {
	sc := ckptScenario()
	// Halt at t=120 s: inside the 60–150 s partition window, so the
	// cursor digest pins live fault gates and a degraded overlay.
	halt := 120 * sim.Second
	plain, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Resilience == nil {
		t.Fatal("precondition: fault scenario produced no resilience telemetry")
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	pool := NewPool(0)
	_, err = pool.RunCheckpointed(sc, CheckpointConfig{Path: path, HaltAt: halt})
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("RunCheckpointed with HaltAt: err = %v, want ErrHalted", err)
	}
	info, err := InspectCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Cursors) == 0 {
		t.Fatal("halted checkpoint holds no cursors")
	}
	for _, c := range info.Cursors {
		if sim.Time(c.At) != halt {
			t.Errorf("cursor for rep %d at %v, want %v", c.Rep, sim.Time(c.At), halt)
		}
	}
	resumed, err := pool.ResumeCheckpoint(path, CheckpointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := resultJSON(t, plain), resultJSON(t, resumed)
	if !bytes.Equal(ra, rb) {
		t.Error("resumed Result differs from the uninterrupted run")
	}
	pa, _ := json.Marshal(plain.Resilience)
	pb, _ := json.Marshal(resumed.Resilience)
	if !bytes.Equal(pa, pb) {
		t.Errorf("Result.Resilience diverged across resume:\nuninterrupted: %s\nresumed:       %s", pa, pb)
	}
}

// Resuming a finished checkpoint re-runs nothing: every replication
// loads from its stored record, so the Result must match even if the
// file is the only thing left of the original process.
func TestResumeCompletedCheckpoint(t *testing.T) {
	sc := ckptScenario()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	pool := NewPool(0)
	first, err := pool.RunCheckpointed(sc, CheckpointConfig{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	again, err := pool.ResumeCheckpoint(path, CheckpointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultJSON(t, first), resultJSON(t, again)) {
		t.Error("resume of a completed checkpoint changed the Result")
	}
}

// A tampered cursor digest must fail the resume loudly: the digest is
// the only thing standing between an undetected determinism bug and a
// silently forked grid.
func TestResumeDetectsDigestMismatch(t *testing.T) {
	sc := ckptScenario()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	pool := NewPool(0)
	_, err := pool.RunCheckpointed(sc, CheckpointConfig{Path: path, HaltAt: 120 * sim.Second})
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
	f, err := checkpoint.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	var hdr map[string]any
	if err := json.Unmarshal(f.Header, &hdr); err != nil {
		t.Fatal(err)
	}
	cursors := hdr["cursors"].([]any)
	cursors[0].(map[string]any)["digest"] = "deadbeefdeadbeef"
	f.Header, err = json.Marshal(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkpoint.Write(path, f); err != nil {
		t.Fatal(err)
	}
	_, err = pool.ResumeCheckpoint(path, CheckpointConfig{})
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Errorf("resume err = %v, want digest-divergence error", err)
	}
}

// Satellite (ISSUE 8): a replication failing mid-grid must surface its
// error through Pool machinery — never deadlock it. The injected
// failure is an unwritable checkpoint path, which every worker hits at
// its first boundary persist.
func TestPoolSurfacesReplicationErrors(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	sc := ckptScenario()
	sc.Replications = 4
	sc.Workers = 2
	pool := NewPool(2)
	_, err := pool.RunCheckpointed(sc, CheckpointConfig{
		Path: filepath.Join(blocker, "x.ckpt"), // blocker is a file: persist must fail
	})
	if err == nil {
		t.Fatal("RunCheckpointed with unwritable path returned nil error")
	}
	if errors.Is(err, ErrHalted) {
		t.Fatalf("err = %v, want a persist failure, not ErrHalted", err)
	}
	// The pool must still be usable: all slots were released.
	sc2 := quickScenario(Regular, 15)
	sc2.Replications = 2
	if _, err := pool.Run(sc2); err != nil {
		t.Fatalf("pool unusable after failed run: %v", err)
	}
}

// resumeInFreshProcess re-execs this test binary to run
// TestCheckpointResumeChild in a brand-new process — the real crash
// -recovery shape: nothing survives but the checkpoint file. It returns
// the goldenMarshal-rendered Result of the resumed run.
func resumeInFreshProcess(t *testing.T, ckptPath string) []byte {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "resumed.json")
	cmd := exec.Command(exe, "-test.run", "^TestCheckpointResumeChild$", "-test.count", "1")
	cmd.Env = append(os.Environ(),
		"MANETP2P_CKPT_RESUME="+ckptPath,
		"MANETP2P_CKPT_OUT="+out,
	)
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("fresh-process resume failed: %v\n%s", err, msg)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("fresh-process resume wrote no report: %v", err)
	}
	return data
}

// TestCheckpointResumeChild is the fresh process's half of the
// round-trip tests: inert unless invoked via resumeInFreshProcess.
func TestCheckpointResumeChild(t *testing.T) {
	path := os.Getenv("MANETP2P_CKPT_RESUME")
	if path == "" {
		t.Skip("child half of the fresh-process resume tests")
	}
	res, err := NewPool(0).ResumeCheckpoint(path, CheckpointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(os.Getenv("MANETP2P_CKPT_OUT"), goldenMarshal(t, res), 0o644); err != nil {
		t.Fatal(err)
	}
}

// Always-on fresh-process round-trip on the fast scenario: halt at the
// midpoint, resume in a new process, compare against the uninterrupted
// in-process run.
func TestCheckpointResumeFreshProcess(t *testing.T) {
	sc := ckptScenario()
	plain, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	_, err = NewPool(0).RunCheckpointed(sc, CheckpointConfig{Path: path, HaltAt: sc.Duration / 2})
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
	got := resumeInFreshProcess(t, path)
	want := goldenMarshal(t, plain)
	if !bytes.Equal(got, want) {
		t.Error("fresh-process resumed report differs from the uninterrupted run")
	}
}

// TestCheckpointGoldenFixtures is the acceptance bar: every committed
// golden fixture — 4 algorithm, 16 routing-matrix, 1 workload, 1
// download — is
// checkpointed at its midpoint, resumed in a fresh process, and the
// resumed report must be byte-identical to the fixture on disk.
// Expensive; gated behind -ckpt-golden and run by ./check.sh checkpoint.
func TestCheckpointGoldenFixtures(t *testing.T) {
	if !*ckptGolden {
		t.Skip("enable with -ckpt-golden (./check.sh checkpoint)")
	}
	type fixture struct {
		name string
		sc   Scenario
		path string
	}
	var fixtures []fixture
	for _, alg := range Algorithms() {
		fixtures = append(fixtures, fixture{
			name: strings.ToLower(alg.String()),
			sc:   goldenScenario(alg),
			path: filepath.Join("testdata", "golden", strings.ToLower(alg.String())+".json"),
		})
	}
	for _, sub := range []struct {
		name string
		kind RoutingKind
	}{{"aodv", RoutingAODV}, {"dsr", RoutingDSR}, {"flood", RoutingFlood}, {"dsdv", RoutingDSDV}} {
		for _, alg := range Algorithms() {
			fixtures = append(fixtures, fixture{
				name: "routing_" + sub.name + "_" + strings.ToLower(alg.String()),
				sc:   goldenRoutingScenario(alg, sub.kind),
				path: filepath.Join("testdata", "golden", "routing_"+sub.name+"_"+strings.ToLower(alg.String())+".json"),
			})
		}
	}
	fixtures = append(fixtures, fixture{
		name: "workload",
		sc:   goldenWorkloadScenario(),
		path: filepath.Join("testdata", "golden", "workload.json"),
	})
	fixtures = append(fixtures, fixture{
		name: "download",
		sc:   goldenDownloadScenario(),
		path: filepath.Join("testdata", "golden", "download.json"),
	})

	pool := NewPool(0)
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			t.Parallel()
			want, err := os.ReadFile(fx.path)
			if err != nil {
				t.Fatalf("missing fixture: %v", err)
			}
			ckptPath := filepath.Join(t.TempDir(), fx.name+".ckpt")
			_, err = pool.RunCheckpointed(fx.sc, CheckpointConfig{
				Path: ckptPath, HaltAt: fx.sc.Duration / 2,
			})
			if !errors.Is(err, ErrHalted) {
				t.Fatalf("err = %v, want ErrHalted", err)
			}
			if dir := os.Getenv("MANETP2P_CKPT_ARTIFACT"); dir != "" && fx.name == "workload" {
				// Preserve the mid-run workload checkpoint for the CI
				// artifact before the resume completes it.
				data, err := os.ReadFile(ckptPath)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, "workload.ckpt"), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			got := resumeInFreshProcess(t, ckptPath)
			if !bytes.Equal(got, want) {
				t.Errorf("fresh-process resumed report differs from fixture %s", fx.path)
			}
		})
	}
}

// TestCheckpointTelemetryManifest pins the telemetry plane's
// checkpoint contract: every persisted checkpoint carries the section
// registry's manifest, resuming against a drifted manifest (a section
// renamed between the writing and resuming binaries) is refused, and a
// checkpoint stripped of the manifest — what a binary without the
// telemetry plane would write — is refused too.
func TestCheckpointTelemetryManifest(t *testing.T) {
	sc := ckptScenario()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	pool := NewPool(0)
	_, err := pool.RunCheckpointed(sc, CheckpointConfig{Path: path, HaltAt: 120 * sim.Second})
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("err = %v, want ErrHalted", err)
	}

	f, err := checkpoint.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	manifest, ok := f.Sections[telemetrySectionName]
	if !ok {
		t.Fatalf("halted checkpoint has no %q section", telemetrySectionName)
	}
	if !bytes.Equal(manifest, sections.Manifest()) {
		t.Fatalf("persisted manifest %s differs from the live registry's %s",
			manifest, sections.Manifest())
	}

	// Drift: rename one section as a binary with a different telemetry
	// plane would have. The re-encoded file is internally consistent
	// (valid CRC), so only the manifest check can catch it.
	drifted := bytes.Replace(manifest, []byte(`"servent"`), []byte(`"servant"`), 1)
	if bytes.Equal(drifted, manifest) {
		t.Fatal("test manifest does not mention the servent section")
	}
	f.Sections[telemetrySectionName] = drifted
	if err := checkpoint.Write(path, f); err != nil {
		t.Fatal(err)
	}
	_, err = pool.ResumeCheckpoint(path, CheckpointConfig{})
	if err == nil || !strings.Contains(err.Error(), "telemetry plane changed") {
		t.Errorf("resume with drifted manifest: err = %v, want telemetry-drift error", err)
	}

	// Absence: a checkpoint written by a binary without the telemetry
	// plane at all.
	delete(f.Sections, telemetrySectionName)
	if err := checkpoint.Write(path, f); err != nil {
		t.Fatal(err)
	}
	_, err = pool.ResumeCheckpoint(path, CheckpointConfig{})
	if err == nil || !strings.Contains(err.Error(), "without the telemetry plane") {
		t.Errorf("resume without manifest: err = %v, want missing-manifest error", err)
	}
}
