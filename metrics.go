package manetp2p

import (
	"io"

	"manetp2p/internal/telemetry"
)

// The streaming metrics sink: in addition to the pooled in-memory
// Result, a run can emit every telemetry section's raw per-replication
// time series as it completes. Streaming is deterministic — points are
// emitted after all replications finish, in ascending replication order
// with sections in registration order — so two runs of the same
// scenario produce byte-identical streams regardless of worker
// scheduling.

// MetricsPoint is one streamed time-series sample.
type MetricsPoint = telemetry.Point

// MetricsSink receives streamed samples; see telemetry.Sink.
type MetricsSink = telemetry.Sink

// NewJSONLSink returns a sink that streams points to w as JSON Lines
// (one object per line: rep, t, section, name, value). The caller owns
// the sink and must Close it to flush; if w is an io.Closer, Close
// closes it too.
func NewJSONLSink(w io.Writer) MetricsSink { return telemetry.NewJSONLSink(w) }

// RunWithMetrics executes the scenario like Run and additionally
// streams every telemetry section's per-replication time series to
// sink. The sink is not closed; the Result is identical to Run's.
func (p *Pool) RunWithMetrics(sc Scenario, sink MetricsSink) (*Result, error) {
	reps, err := p.runReps(sc)
	if err != nil {
		return nil, err
	}
	res := aggregate(sc, reps)
	streamMetrics(sc, reps, sink)
	return res, nil
}

// streamMetrics replays the finished replications through the section
// registry's Stream hooks in deterministic order.
func streamMetrics(sc Scenario, reps []repResult, sink MetricsSink) {
	if sink == nil {
		return
	}
	for i := range reps {
		sections.Stream(sc, i, &reps[i], sink.Emit)
	}
}
