package manetp2p

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// This file provides JSON (de)serialization for scenarios so experiment
// configurations can live in version-controlled files and be replayed
// exactly:
//
//	sc, _ := manetp2p.LoadScenario("experiments/fig7.json")
//	res, _ := manetp2p.Run(sc)
//
// Durations serialize as integer microseconds (the sim.Time unit).

// MarshalJSONScenario renders sc as indented JSON.
func MarshalJSONScenario(sc Scenario) ([]byte, error) {
	return json.MarshalIndent(sc, "", "  ")
}

// UnmarshalJSONScenario parses a scenario, filling unset fields from
// DefaultScenario(50, Regular) so partial files stay usable, and
// validates the result.
func UnmarshalJSONScenario(data []byte) (Scenario, error) {
	sc := DefaultScenario(50, Regular)
	if err := json.Unmarshal(data, &sc); err != nil {
		return Scenario{}, fmt.Errorf("manetp2p: parsing scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// SaveScenario writes sc to path as JSON.
func SaveScenario(path string, sc Scenario) error {
	data, err := MarshalJSONScenario(sc)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadScenario reads a scenario from a JSON file ("-" = stdin).
func LoadScenario(path string) (Scenario, error) {
	var (
		data []byte
		err  error
	)
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return Scenario{}, fmt.Errorf("manetp2p: reading scenario: %w", err)
	}
	return UnmarshalJSONScenario(data)
}
