package manetp2p

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// This file provides JSON (de)serialization for scenarios so experiment
// configurations can live in version-controlled files and be replayed
// exactly:
//
//	sc, _ := manetp2p.LoadScenario("experiments/fig7.json")
//	res, _ := manetp2p.Run(sc)
//
// Durations serialize as integer microseconds (the sim.Time unit), with
// one deliberate exception: the Faults plan is the hand-authored part
// of a scenario, so its events carry a "type" tag and use
// floating-point seconds (see internal/fault, json.go). Unknown fault
// event types are rejected with an error listing the valid ones.

// MarshalJSONScenario renders sc as indented JSON.
func MarshalJSONScenario(sc Scenario) ([]byte, error) {
	return json.MarshalIndent(sc, "", "  ")
}

// UnmarshalJSONScenario parses a scenario strictly — unknown fields are
// rejected rather than silently dropped, so a typoed key cannot
// masquerade as "configured" — filling unset fields from
// DefaultScenario(50, Regular) so partial files stay usable, and
// validates the result. (Strictness does not recurse into types with
// custom unmarshalers, like fault events and workload arrivals; those
// validate their own tagged shapes.)
func UnmarshalJSONScenario(data []byte) (Scenario, error) {
	sc := DefaultScenario(50, Regular)
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("manetp2p: parsing scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// SaveScenario writes sc to path as JSON.
func SaveScenario(path string, sc Scenario) error {
	data, err := MarshalJSONScenario(sc)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadScenario reads a scenario from a JSON file ("-" = stdin).
func LoadScenario(path string) (Scenario, error) {
	data, err := readPath(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("manetp2p: reading scenario: %w", err)
	}
	return UnmarshalJSONScenario(data)
}

// LoadFaultPlan reads a standalone fault-injection plan from a JSON
// file ("-" = stdin) and validates it, e.g. for cmd/p2psim -faults.
func LoadFaultPlan(path string) (FaultPlan, error) {
	data, err := readPath(path)
	if err != nil {
		return FaultPlan{}, fmt.Errorf("manetp2p: reading fault plan: %w", err)
	}
	var plan FaultPlan
	if err := json.Unmarshal(data, &plan); err != nil {
		return FaultPlan{}, fmt.Errorf("manetp2p: parsing fault plan: %w", err)
	}
	if err := plan.Validate(); err != nil {
		return FaultPlan{}, fmt.Errorf("manetp2p: fault plan: %w", err)
	}
	return plan, nil
}

// SaveFaultPlan writes a fault plan to path as JSON.
func SaveFaultPlan(path string, plan FaultPlan) error {
	data, err := json.MarshalIndent(plan, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadWorkloadPlan reads a standalone workload plan from a JSON file
// ("-" = stdin) and validates it, e.g. for cmd/p2psim -workload. Like
// fault plans, workload plans are hand-authored: times are float
// seconds and the arrival block carries a "process" tag (see
// internal/workload, json.go).
func LoadWorkloadPlan(path string) (*WorkloadPlan, error) {
	data, err := readPath(path)
	if err != nil {
		return nil, fmt.Errorf("manetp2p: reading workload plan: %w", err)
	}
	var plan WorkloadPlan
	if err := json.Unmarshal(data, &plan); err != nil {
		return nil, fmt.Errorf("manetp2p: parsing workload plan: %w", err)
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("manetp2p: workload plan: %w", err)
	}
	return &plan, nil
}

// SaveWorkloadPlan writes a workload plan to path as JSON.
func SaveWorkloadPlan(path string, plan *WorkloadPlan) error {
	data, err := json.MarshalIndent(plan, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// readPath reads a file, with "-" meaning stdin.
func readPath(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}
