module manetp2p

go 1.22
